package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"hetsim"
	"hetsim/internal/grid"
	"hetsim/internal/runpool"
	"hetsim/internal/sim"
	"hetsim/internal/store"
)

// JobSpec is a sweep submission: one configuration × a benchmark list
// × an optional parameter axis. It is the HTTP request body and the
// durable checkpoint record — a job's identity is the hash of its
// normalized spec, so resubmitting the same sweep is idempotent.
type JobSpec struct {
	Config        string   `json:"config"`
	Benchmarks    []string `json:"benchmarks"`
	Param         string   `json:"param,omitempty"`
	Values        []string `json:"values,omitempty"`
	Scale         string   `json:"scale,omitempty"`
	Cores         int      `json:"cores,omitempty"`
	Pair          bool     `json:"pair,omitempty"`
	EpochInterval int64    `json:"epoch_interval,omitempty"`
	// Parallel selects lane-parallel execution for each cell. Output is
	// byte-identical to serial and the store key does not include it, so
	// serial and parallel jobs share cache entries.
	Parallel bool `json:"parallel,omitempty"`
}

// normalize fills defaults and canonicalizes free-form fields so that
// equivalent submissions hash to the same job ID.
func (s JobSpec) normalize() JobSpec {
	s.Config = strings.ToLower(strings.TrimSpace(s.Config))
	s.Param = strings.ToLower(strings.TrimSpace(s.Param))
	s.Scale = strings.ToLower(strings.TrimSpace(s.Scale))
	if s.Scale == "" {
		s.Scale = "test"
	}
	if s.Cores == 0 {
		s.Cores = 8
	}
	for i, b := range s.Benchmarks {
		s.Benchmarks[i] = strings.TrimSpace(b)
	}
	for i, v := range s.Values {
		s.Values[i] = strings.TrimSpace(v)
	}
	return s
}

// id is the content address of the normalized spec. JSON field order
// is fixed by the struct, so the encoding is deterministic.
func (s JobSpec) id() string {
	b, _ := json.Marshal(s)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:12]
}

// cell is one grid point: (value, benchmark) under the job's config.
type cell struct {
	Bench string
	Value string
	cfg   hetsim.Config
	scale hetsim.Scale
	key   store.RunKey

	mu     sync.Mutex
	state  string // "pending" | "done" | "failed"
	errMsg string
	header []string
	row    []string
}

// job is one accepted sweep and its live progress.
type job struct {
	ID    string
	Spec  JobSpec
	Cells []*cell

	mu       sync.Mutex
	cond     *sync.Cond
	done     int
	failed   int
	epochLog []byte // accumulated per-epoch JSONL, appended per finished cell
}

func (j *job) finished() bool { return j.done+j.failed == len(j.Cells) }

// Options configures a Server.
type Options struct {
	// CacheDir roots the durable result store. Required: the store is
	// both the run cache and the server's completed-cell checkpoint.
	CacheDir string
	// StateDir holds one spec file per accepted job; NewServer re-reads
	// it so a restarted server resumes every known sweep.
	StateDir string
	// CacheMaxBytes caps the store's objects tree; past it the store
	// evicts least-recently-used entries (0 = unlimited).
	CacheMaxBytes int64
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Log receives operational messages (nil = discard).
	Log io.Writer
}

// Server shards sweep cells across a runpool, with the durable store
// as a second memo tier. Identical cells — within one job or across
// jobs — are simulated at most once per server lifetime, and at most
// once ever while the store directory survives.
type Server struct {
	opts  Options
	cache *store.Store
	pool  *runpool.Pool[string, hetsim.Results]

	closed atomic.Bool
	wg     sync.WaitGroup

	// executed counts cells that actually ran the simulator; restored
	// counts cells served from the durable store. After a kill/restart
	// these two split the grid exactly: restored = cells the dead
	// server finished, executed = the rest.
	executed atomic.Uint64
	restored atomic.Uint64

	mu   sync.Mutex
	jobs map[string]*job
}

var errClosed = errors.New("sweepd: server is shutting down")

// NewServer opens the store, loads every checkpointed job from the
// state directory, and re-enqueues their cells. Cells whose results
// already sit in the store complete without running the simulator.
func NewServer(opts Options) (*Server, error) {
	cache, err := store.Open(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	cache.SetMaxBytes(opts.CacheMaxBytes)
	if opts.StateDir == "" {
		return nil, fmt.Errorf("sweepd: empty state directory")
	}
	if err := os.MkdirAll(filepath.Join(opts.StateDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("sweepd: %w", err)
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	s := &Server{
		opts:  opts,
		cache: cache,
		pool:  runpool.New[string, hetsim.Results](opts.Workers),
		jobs:  map[string]*job{},
	}
	if err := s.resume(); err != nil {
		return nil, err
	}
	return s, nil
}

// resume re-enqueues every job whose spec file survived a previous
// process. The store decides which cells still need simulating.
func (s *Server) resume() error {
	dir := filepath.Join(s.opts.StateDir, "jobs")
	names, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("sweepd: %w", err)
	}
	// Deterministic resume order (ReadDir sorts, but be explicit).
	sort.Slice(names, func(i, k int) bool { return names[i].Name() < names[k].Name() })
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, de.Name()))
		if err != nil {
			fmt.Fprintf(s.opts.Log, "sweepd: skipping %s: %v\n", de.Name(), err)
			continue
		}
		var spec JobSpec
		if err := json.Unmarshal(b, &spec); err != nil {
			fmt.Fprintf(s.opts.Log, "sweepd: skipping %s: %v\n", de.Name(), err)
			continue
		}
		if _, err := s.submit(spec); err != nil {
			fmt.Fprintf(s.opts.Log, "sweepd: resume %s: %v\n", de.Name(), err)
			continue
		}
		fmt.Fprintf(s.opts.Log, "sweepd: resumed job %s\n", spec.id())
	}
	return nil
}

// Close stops accepting work: queued cells fail fast, in-flight cells
// run to completion (their results are checkpointed in the store), and
// Close returns once every cell goroutine has drained.
func (s *Server) Close() {
	s.closed.Store(true)
	s.wg.Wait()
}

// buildCells validates the spec and expands its grid. Pure function of
// the spec, so a resumed server reconstructs the identical grid — and
// the identical store keys — the dead server was working through.
func buildCells(spec JobSpec) ([]*cell, error) {
	if len(spec.Benchmarks) == 0 {
		return nil, fmt.Errorf("sweepd: no benchmarks")
	}
	known := map[string]bool{}
	for _, b := range hetsim.Benchmarks() {
		known[b] = true
	}
	for _, b := range spec.Benchmarks {
		if !known[b] {
			return nil, fmt.Errorf("sweepd: unknown benchmark %q", b)
		}
	}
	if (spec.Param == "") != (len(spec.Values) == 0) {
		return nil, fmt.Errorf("sweepd: param and values must be given together")
	}
	scale, err := grid.Scale(spec.Scale)
	if err != nil {
		return nil, err
	}
	scale.EpochInterval = sim.Cycle(spec.EpochInterval)
	values := spec.Values
	if spec.Param == "" {
		values = []string{""} // single column: the unmodified config
	}
	var cells []*cell
	for _, v := range values {
		cfg, err := grid.Config(spec.Config, spec.Cores)
		if err != nil {
			return nil, err
		}
		cfg.Parallel = spec.Parallel
		runScale := scale
		if spec.Param != "" {
			if err := grid.Apply(&cfg, &runScale, spec.Param, v); err != nil {
				return nil, err
			}
		}
		for _, b := range spec.Benchmarks {
			cells = append(cells, &cell{
				Bench: b, Value: v, cfg: cfg, scale: runScale, state: "pending",
				key: store.RunKey{Cfg: cfg.Key(), Bench: b, Scale: runScale, Pair: spec.Pair},
			})
		}
	}
	return cells, nil
}

// submit registers the job (idempotently) and fans its cells across
// the pool. The bool reports whether the job was newly created.
func (s *Server) submit(spec JobSpec) (*job, error) {
	spec = spec.normalize()
	cells, err := buildCells(spec)
	if err != nil {
		return nil, err
	}
	id := spec.id()

	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		return j, nil
	}
	j := &job{ID: id, Spec: spec, Cells: cells}
	j.cond = sync.NewCond(&j.mu)
	s.jobs[id] = j
	s.mu.Unlock()

	if err := s.checkpoint(j); err != nil {
		return nil, err
	}
	for _, c := range j.Cells {
		s.enqueue(j, c)
	}
	return j, nil
}

// checkpoint durably records the job spec (atomic temp + rename), so a
// restarted server can rebuild the grid. Completed-cell state needs no
// separate record: it is exactly the set of store entries.
func (s *Server) checkpoint(j *job) error {
	b, err := json.MarshalIndent(j.Spec, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Join(s.opts.StateDir, "jobs")
	tmp, err := os.CreateTemp(dir, ".job-*")
	if err != nil {
		return fmt.Errorf("sweepd: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweepd: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweepd: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, j.ID+".json")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweepd: %w", err)
	}
	return nil
}

// enqueue runs one cell: store tier first, simulator on a miss. Cells
// are keyed by their store hash, so overlapping jobs join the same
// in-flight run instead of repeating it.
func (s *Server) enqueue(j *job, c *cell) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		res, err := s.pool.Do(c.key.Hash(), func() (hetsim.Results, error) {
			if s.closed.Load() {
				return hetsim.Results{}, errClosed
			}
			if res, ok := s.cache.Get(c.key); ok {
				s.restored.Add(1)
				return res, nil
			}
			res, err := runCell(c)
			if err != nil {
				return hetsim.Results{}, err
			}
			s.executed.Add(1)
			if perr := s.cache.Put(c.key, res); perr != nil {
				fmt.Fprintf(s.opts.Log, "sweepd: cache write failed: %v\n", perr)
			}
			return res, nil
		})
		s.complete(j, c, res, err)
	}()
}

// runCell performs the actual simulation, mirroring cmd/sweep.
func runCell(c *cell) (hetsim.Results, error) {
	if c.key.Pair {
		return hetsim.RunPair(c.cfg, c.Bench, c.scale)
	}
	sys, err := hetsim.NewSystem(c.cfg, c.Bench)
	if err != nil {
		return hetsim.Results{}, err
	}
	return sys.Run(c.scale), nil
}

// complete records the finished cell and publishes its epoch series to
// any live /epochs streams.
func (s *Server) complete(j *job, c *cell, res hetsim.Results, err error) {
	c.mu.Lock()
	if err != nil {
		c.state = "failed"
		c.errMsg = err.Error()
	} else {
		c.state = "done"
		c.header = res.CSVHeader()
		c.row = res.CSVRow()
	}
	c.mu.Unlock()

	var chunk []byte
	if err == nil && res.Epochs != nil {
		// The cell identity is spliced into every JSONL record through
		// the same extra-column path the CLI sinks use, so a stream
		// carrying many cells stays self-describing line by line.
		var buf bytes.Buffer
		if werr := res.Epochs.WriteJSONL(&buf,
			[]string{"job", "bench", "param", "value"},
			[]string{j.ID, c.Bench, j.Spec.Param, c.Value}); werr == nil {
			chunk = buf.Bytes()
		} else {
			fmt.Fprintf(s.opts.Log, "sweepd: epoch encode failed: %v\n", werr)
		}
	}

	j.mu.Lock()
	if err != nil {
		j.failed++
	} else {
		j.done++
	}
	j.epochLog = append(j.epochLog, chunk...)
	j.mu.Unlock()
	j.cond.Broadcast()
}

// Status is the wire form of a job's progress.
type Status struct {
	ID     string  `json:"id"`
	Spec   JobSpec `json:"spec"`
	State  string  `json:"state"` // "running" | "done" | "failed"
	Total  int     `json:"total"`
	Done   int     `json:"done"`
	Failed int     `json:"failed"`
	// Executed and Restored are server-lifetime counters: cells that
	// ran the simulator vs cells served from the durable store.
	Executed uint64   `json:"executed"`
	Restored uint64   `json:"restored"`
	Errors   []string `json:"errors,omitempty"`
}

func (s *Server) status(j *job) Status {
	j.mu.Lock()
	done, failed := j.done, j.failed
	j.mu.Unlock()
	st := Status{
		ID: j.ID, Spec: j.Spec, State: "running",
		Total: len(j.Cells), Done: done, Failed: failed,
		Executed: s.executed.Load(), Restored: s.restored.Load(),
	}
	if done+failed == len(j.Cells) {
		if failed > 0 {
			st.State = "failed"
		} else {
			st.State = "done"
		}
	}
	for _, c := range j.Cells {
		c.mu.Lock()
		if c.errMsg != "" {
			st.Errors = append(st.Errors, fmt.Sprintf("%s value=%q: %s", c.Bench, c.Value, c.errMsg))
		}
		c.mu.Unlock()
	}
	return st
}

// Handler builds the HTTP API:
//
//	POST /api/v1/sweeps              submit a JobSpec (idempotent)
//	GET  /api/v1/sweeps              list job statuses
//	GET  /api/v1/sweeps/{id}         one job's status
//	GET  /api/v1/sweeps/{id}/results.csv   summary CSV (?wait=1 blocks)
//	GET  /api/v1/sweeps/{id}/epochs  live per-epoch JSONL stream
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/sweeps", s.handleList)
	mux.HandleFunc("GET /api/v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/results.csv", s.handleResults)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/epochs", s.handleEpochs)
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		http.Error(w, errClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(s.status(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = s.status(j)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) lookup(r *http.Request) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.status(j))
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		http.NotFound(w, r)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		j.mu.Lock()
		for !j.finished() {
			j.cond.Wait()
		}
		j.mu.Unlock()
	}
	w.Header().Set("Content-Type", "text/csv")
	cw := csv.NewWriter(w)
	wroteHeader := false
	for _, c := range j.Cells {
		c.mu.Lock()
		state, header, row := c.state, c.header, c.row
		bench, value := c.Bench, c.Value
		c.mu.Unlock()
		if state != "done" {
			continue
		}
		if !wroteHeader {
			cw.Write(append([]string{"param", "value", "bench"}, header...))
			wroteHeader = true
		}
		cw.Write(append([]string{j.Spec.Param, value, bench}, row...))
	}
	cw.Flush()
}

// handleEpochs streams the job's per-epoch JSONL live: whatever has
// accumulated is sent immediately, then the stream follows cell
// completions and closes when the grid is finished.
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	flusher, _ := w.(http.Flusher)

	// Wake the waiter when the client goes away so the handler's
	// goroutine doesn't outlive the connection.
	done := r.Context().Done()
	go func() {
		<-done
		j.cond.Broadcast()
	}()

	off := 0
	for {
		j.mu.Lock()
		for off == len(j.epochLog) && !j.finished() {
			select {
			case <-done:
				j.mu.Unlock()
				return
			default:
			}
			j.cond.Wait()
		}
		chunk := j.epochLog[off:]
		off = len(j.epochLog)
		fin := j.finished()
		j.mu.Unlock()

		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if fin {
			return
		}
	}
}
