package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetsim"
	"hetsim/internal/grid"
	"hetsim/internal/lease"
	"hetsim/internal/runpool"
	"hetsim/internal/sim"
	"hetsim/internal/store"
)

// JobSpec is a sweep submission: one configuration × a benchmark list
// × an optional parameter axis. It is the HTTP request body and the
// durable checkpoint record — a job's identity is the hash of its
// normalized spec, so resubmitting the same sweep is idempotent.
type JobSpec struct {
	Config     string   `json:"config"`
	Benchmarks []string `json:"benchmarks"`
	// Topology, when set, overrides the config's memory organization: a
	// named topology (grid.TopologyNames) or a raw spec string.
	Topology      string   `json:"topology,omitempty"`
	Param         string   `json:"param,omitempty"`
	Values        []string `json:"values,omitempty"`
	Scale         string   `json:"scale,omitempty"`
	Cores         int      `json:"cores,omitempty"`
	Pair          bool     `json:"pair,omitempty"`
	EpochInterval int64    `json:"epoch_interval,omitempty"`
	// Parallel selects lane-parallel execution for each cell. Output is
	// byte-identical to serial and the store key does not include it, so
	// serial and parallel jobs share cache entries.
	Parallel bool `json:"parallel,omitempty"`
}

// normalize fills defaults and canonicalizes free-form fields so that
// equivalent submissions hash to the same job ID.
func (s JobSpec) normalize() JobSpec {
	s.Config = strings.ToLower(strings.TrimSpace(s.Config))
	s.Topology = strings.ToLower(strings.TrimSpace(s.Topology))
	s.Param = strings.ToLower(strings.TrimSpace(s.Param))
	s.Scale = strings.ToLower(strings.TrimSpace(s.Scale))
	if s.Scale == "" {
		s.Scale = "test"
	}
	if s.Cores == 0 {
		s.Cores = 8
	}
	for i, b := range s.Benchmarks {
		s.Benchmarks[i] = strings.TrimSpace(b)
	}
	for i, v := range s.Values {
		s.Values[i] = strings.TrimSpace(v)
	}
	return s
}

// id is the content address of the normalized spec. JSON field order
// is fixed by the struct, so the encoding is deterministic.
func (s JobSpec) id() string {
	b, _ := json.Marshal(s)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:12]
}

// cell is one grid point: (value, benchmark) under the job's config.
type cell struct {
	Bench string
	Value string
	cfg   hetsim.Config
	scale hetsim.Scale
	key   store.RunKey

	mu     sync.Mutex
	state  string // "pending" | "done" | "failed" | "poisoned"
	errMsg string
	header []string
	row    []string
}

// job is one accepted sweep and its live progress.
type job struct {
	ID    string
	Spec  JobSpec
	Cells []*cell

	mu       sync.Mutex
	cond     *sync.Cond
	done     int
	failed   int
	poisoned int
	epochLog []byte // accumulated per-epoch JSONL, appended per finished cell
}

func (j *job) finished() bool { return j.done+j.failed+j.poisoned == len(j.Cells) }

// Options configures a Server.
type Options struct {
	// CacheDir roots the durable result store and the shared leases/
	// subdirectory workers coordinate through. Required even when Cache
	// is injected: the lease directory is what N workers pointing at the
	// same CacheDir use to divide a sweep with no coordinator.
	CacheDir string
	// StateDir holds one spec file per accepted job; NewServer re-reads
	// it so a restarted server resumes every known sweep, and the Poll
	// loop re-reads it so a worker picks up jobs submitted to a peer.
	StateDir string
	// CacheMaxBytes caps the store's objects tree; past it the store
	// evicts least-recently-used entries (0 = unlimited).
	CacheMaxBytes int64
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// Log receives operational messages (nil = discard).
	Log io.Writer

	// Cache overrides the durable tier (nil = open CacheDir). The seam
	// exists for the chaos harness: tests wrap the real store in a
	// fault injector and hand it to an otherwise unmodified server.
	Cache store.Interface
	// Owner is this worker's lease identity; it must be unique among
	// live processes sharing CacheDir ("" = hostname-pid).
	Owner string
	// LeaseTTL is how long a worker may go silent before its cells are
	// reclaimed by peers (0 = 10s). Heartbeats renew at TTL/3.
	LeaseTTL time.Duration
	// CellTimeout bounds each simulation run; a cell that exceeds it is
	// truncated, counted as a failed attempt, and retried (0 = none).
	CellTimeout time.Duration
	// CellAttempts is the per-cell run budget: a cell whose run errors
	// this many times is marked poisoned and never retried (0 = 3).
	CellAttempts int
	// Poll, when positive, rescans StateDir on this interval so jobs
	// checkpointed by other workers are discovered and joined.
	Poll time.Duration

	// HoldCellForTest makes every leased cell sleep this long between
	// acquiring its lease and running, so crash tests can SIGKILL a
	// worker that is deterministically mid-cell. Test hook; zero in
	// production.
	HoldCellForTest time.Duration
}

// Server shards sweep cells across a runpool, with the durable store
// as a second memo tier and per-cell leases as the cross-process
// arbiter. Identical cells — within one job, across jobs, or across N
// worker processes sharing one store — are simulated once per failure,
// and at most once ever while the store directory survives.
type Server struct {
	opts   Options
	cache  store.Interface
	disk   *store.Store // nil when Cache was injected and is not a *store.Store
	leases *lease.Manager
	pool   *runpool.Pool[string, hetsim.Results]

	closed    atomic.Bool
	aborting  atomic.Bool // drain deadline passed: truncate in-flight runs
	drainCh   chan struct{}
	drainOnce sync.Once
	wg        sync.WaitGroup

	degradedWarn sync.Once

	// executed counts cells that actually ran the simulator; restored
	// counts cells served from the durable store. After a kill/restart
	// these two split the grid exactly: restored = cells the dead
	// server finished, executed = the rest.
	executed atomic.Uint64
	restored atomic.Uint64

	mu   sync.Mutex
	jobs map[string]*job
}

var (
	errClosed   = errors.New("sweepd: server is shutting down")
	errPoisoned = errors.New("sweepd: cell poisoned (retry budget exhausted)")
)

// NewServer opens the store and lease directory, loads every
// checkpointed job from the state directory, and re-enqueues their
// cells. Cells whose results already sit in the store complete without
// running the simulator.
func NewServer(opts Options) (*Server, error) {
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	if opts.Owner == "" {
		opts.Owner = lease.DefaultOwner()
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.CellAttempts <= 0 {
		opts.CellAttempts = 3
	}
	cache := opts.Cache
	var disk *store.Store
	if cache == nil {
		var err error
		disk, err = store.Open(opts.CacheDir)
		if err != nil {
			return nil, err
		}
		disk.SetMaxBytes(opts.CacheMaxBytes)
		cache = disk
	} else if ds, ok := cache.(*store.Store); ok {
		disk = ds
	}
	leases, err := lease.NewManager(filepath.Join(opts.CacheDir, "leases"), opts.Owner, opts.LeaseTTL)
	if err != nil {
		return nil, err
	}
	if opts.StateDir == "" {
		return nil, fmt.Errorf("sweepd: empty state directory")
	}
	if err := os.MkdirAll(filepath.Join(opts.StateDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("sweepd: %w", err)
	}
	s := &Server{
		opts:    opts,
		cache:   cache,
		disk:    disk,
		leases:  leases,
		pool:    runpool.New[string, hetsim.Results](opts.Workers),
		drainCh: make(chan struct{}),
		jobs:    map[string]*job{},
	}
	if err := s.scanJobs("resumed"); err != nil {
		return nil, err
	}
	if opts.Poll > 0 {
		s.wg.Add(1)
		go s.pollLoop()
	}
	return s, nil
}

// Owner reports this server's lease identity.
func (s *Server) Owner() string { return s.leases.Owner() }

// scanJobs submits every job whose spec file sits in the state
// directory, skipping ones already known. It is both startup resume
// and the poll loop's rescan: a job POSTed to any worker sharing the
// state directory is checkpointed before it is enqueued, so every
// peer's next scan joins it. The store decides which cells still need
// simulating.
func (s *Server) scanJobs(verb string) error {
	dir := filepath.Join(s.opts.StateDir, "jobs")
	names, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("sweepd: %w", err)
	}
	// Deterministic scan order (ReadDir sorts, but be explicit).
	sort.Slice(names, func(i, k int) bool { return names[i].Name() < names[k].Name() })
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		s.mu.Lock()
		_, known := s.jobs[strings.TrimSuffix(name, ".json")]
		s.mu.Unlock()
		if known {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			fmt.Fprintf(s.opts.Log, "sweepd: skipping %s: %v\n", name, err)
			continue
		}
		var spec JobSpec
		if err := json.Unmarshal(b, &spec); err != nil {
			fmt.Fprintf(s.opts.Log, "sweepd: skipping %s: %v\n", name, err)
			continue
		}
		if _, err := s.submit(spec); err != nil {
			fmt.Fprintf(s.opts.Log, "sweepd: %s %s: %v\n", verb, name, err)
			continue
		}
		fmt.Fprintf(s.opts.Log, "sweepd: %s job %s\n", verb, spec.id())
	}
	return nil
}

// pollLoop rescans the state directory until drain so this worker
// discovers jobs submitted through peers (or dropped in by hand).
func (s *Server) pollLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.Poll)
	defer t.Stop()
	for {
		select {
		case <-s.drainCh:
			return
		case <-t.C:
			if err := s.scanJobs("discovered"); err != nil {
				fmt.Fprintf(s.opts.Log, "sweepd: rescan: %v\n", err)
			}
		}
	}
}

// StartDrain stops accepting work without waiting: submissions are
// refused, queued cells fail fast, backoff sleeps cut short. In-flight
// simulations keep running until Drain's deadline passes.
func (s *Server) StartDrain() {
	s.closed.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Drain gracefully winds the server down: in-flight cells run to
// completion (their results are checkpointed in the store and their
// leases released), queued cells fail fast. If ctx expires first the
// remaining in-flight simulations are truncated via their cancel hook
// — the simulator polls it on the drive loop's stop grid, so the
// residual wait after abort is microseconds of simulated time, and
// every lease is still released on the way out.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.aborting.Store(true)
		<-done
		return ctx.Err()
	}
}

// Close drains with no deadline: every in-flight cell finishes.
func (s *Server) Close() { s.Drain(context.Background()) }

// buildCells validates the spec and expands its grid. Pure function of
// the spec, so a resumed server reconstructs the identical grid — and
// the identical store keys — the dead server was working through.
func buildCells(spec JobSpec) ([]*cell, error) {
	if len(spec.Benchmarks) == 0 {
		return nil, fmt.Errorf("sweepd: no benchmarks")
	}
	known := map[string]bool{}
	for _, b := range hetsim.Benchmarks() {
		known[b] = true
	}
	for _, b := range spec.Benchmarks {
		if !known[b] {
			return nil, fmt.Errorf("sweepd: unknown benchmark %q", b)
		}
	}
	if (spec.Param == "") != (len(spec.Values) == 0) {
		return nil, fmt.Errorf("sweepd: param and values must be given together")
	}
	scale, err := grid.Scale(spec.Scale)
	if err != nil {
		return nil, err
	}
	scale.EpochInterval = sim.Cycle(spec.EpochInterval)
	values := spec.Values
	if spec.Param == "" {
		values = []string{""} // single column: the unmodified config
	}
	var cells []*cell
	for _, v := range values {
		cfg, err := grid.Config(spec.Config, spec.Cores)
		if err != nil {
			return nil, err
		}
		if spec.Topology != "" {
			if err := grid.ApplyTopology(&cfg, spec.Topology); err != nil {
				return nil, err
			}
		}
		cfg.Parallel = spec.Parallel
		runScale := scale
		if spec.Param != "" {
			if err := grid.Apply(&cfg, &runScale, spec.Param, v); err != nil {
				return nil, err
			}
		}
		for _, b := range spec.Benchmarks {
			cells = append(cells, &cell{
				Bench: b, Value: v, cfg: cfg, scale: runScale, state: "pending",
				key: store.RunKey{Cfg: cfg.Key(), Bench: b, Scale: runScale, Pair: spec.Pair},
			})
		}
	}
	return cells, nil
}

// submit registers the job (idempotently) and fans its cells across
// the pool. Cells are enqueued in a per-worker deterministic shuffle —
// seeded by (owner, job ID) — so N workers sharing a store start from
// different corners of the grid and divide it by lease contention
// instead of colliding cell by cell in the same order. The job's Cells
// slice keeps grid order, so results.csv is identical however many
// workers raced.
func (s *Server) submit(spec JobSpec) (*job, error) {
	spec = spec.normalize()
	cells, err := buildCells(spec)
	if err != nil {
		return nil, err
	}
	id := spec.id()

	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		s.mu.Unlock()
		return j, nil
	}
	j := &job{ID: id, Spec: spec, Cells: cells}
	j.cond = sync.NewCond(&j.mu)
	s.jobs[id] = j
	s.mu.Unlock()

	if err := s.checkpoint(j); err != nil {
		return nil, err
	}
	order := rand.New(rand.NewSource(lease.Seed(s.leases.Owner(), id))).Perm(len(j.Cells))
	for _, i := range order {
		s.enqueue(j, j.Cells[i])
	}
	return j, nil
}

// checkpoint durably records the job spec (atomic temp + rename), so a
// restarted server can rebuild the grid. Completed-cell state needs no
// separate record: it is exactly the set of store entries.
func (s *Server) checkpoint(j *job) error {
	b, err := json.MarshalIndent(j.Spec, "", "  ")
	if err != nil {
		return err
	}
	dir := filepath.Join(s.opts.StateDir, "jobs")
	tmp, err := os.CreateTemp(dir, ".job-*")
	if err != nil {
		return fmt.Errorf("sweepd: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweepd: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweepd: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, j.ID+".json")); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweepd: %w", err)
	}
	return nil
}

// enqueue runs one cell through the leased pipeline. Cells are keyed
// by their store hash, so overlapping jobs join the same in-flight run
// instead of repeating it.
func (s *Server) enqueue(j *job, c *cell) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		res, err := s.pool.Do(c.key.Hash(), func() (hetsim.Results, error) {
			return s.runLeased(c)
		})
		s.complete(j, c, res, err)
	}()
}

// sleep waits d unless the server starts draining first, reporting
// whether the full wait elapsed.
func (s *Server) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-s.drainCh:
		return false
	}
}

// runLeased is the per-cell state machine tying every robustness
// mechanism together:
//
//	store hit → done (restored)
//	lease held elsewhere → back off (capped exponential, seeded
//	    jitter), re-check the store — the holder's finished result
//	    arrives as a cache hit; if the holder dies instead, its lease
//	    expires and the next TryAcquire reclaims it with a bumped
//	    fencing token
//	lease acquired → heartbeat in the background, run the simulator,
//	    checkpoint to the store, release
//	run error → release, count an attempt, back off, retry; past the
//	    attempt budget the cell is poisoned
//
// Backoff sleeps happen while holding a pool slot — acceptable because
// contention means another process is doing the cell's work, so this
// worker's slot has nothing better to run that isn't also contended.
func (s *Server) runLeased(c *cell) (hetsim.Results, error) {
	hash := c.key.Hash()
	bo := lease.NewBackoff(0, 0, lease.Seed(s.leases.Owner(), hash))
	attempts := 0
	for {
		if s.closed.Load() {
			return hetsim.Results{}, errClosed
		}
		if res, ok := s.cache.Get(c.key); ok {
			s.restored.Add(1)
			return res, nil
		}
		ls, err := s.leases.TryAcquire(hash)
		if errors.Is(err, lease.ErrHeld) {
			if !s.sleep(bo.Next()) {
				return hetsim.Results{}, errClosed
			}
			continue
		}
		if err != nil {
			return hetsim.Results{}, err
		}
		// Double-check under the lease: the previous holder may have
		// finished between our store read and the acquire.
		if res, ok := s.cache.Get(c.key); ok {
			s.releaseLease(ls)
			s.restored.Add(1)
			return res, nil
		}
		stop := make(chan struct{})
		lost := ls.Heartbeat(0, stop)
		if hold := s.opts.HoldCellForTest; hold > 0 {
			s.sleep(hold)
		}
		res, runErr := s.runCell(c)
		close(stop)
		select {
		case <-lost:
			// Reclaimed mid-run (a long stall outlived the TTL). The
			// reclaimer is re-running the cell; our result is
			// byte-identical, so publishing it anyway is harmless — the
			// log line is for observability, not recovery.
			fmt.Fprintf(s.opts.Log, "sweepd: lease lost mid-cell %s (duplicated work)\n", hash[:12])
		default:
		}
		if runErr == nil {
			if perr := s.cache.Put(c.key, res); perr != nil {
				s.warnPut(perr)
			}
			s.releaseLease(ls)
			s.executed.Add(1)
			return res, nil
		}
		s.releaseLease(ls)
		if s.closed.Load() {
			// A drain-aborted run is a shutdown, not a strike against
			// the cell.
			return hetsim.Results{}, errClosed
		}
		attempts++
		if attempts >= s.opts.CellAttempts {
			return hetsim.Results{}, fmt.Errorf("%w after %d attempts: %v", errPoisoned, attempts, runErr)
		}
		fmt.Fprintf(s.opts.Log, "sweepd: cell %s attempt %d/%d failed, backing off: %v\n",
			hash[:12], attempts, s.opts.CellAttempts, runErr)
		if !s.sleep(bo.Next()) {
			return hetsim.Results{}, errClosed
		}
	}
}

func (s *Server) releaseLease(l *lease.Lease) {
	if err := l.Release(); err != nil {
		fmt.Fprintf(s.opts.Log, "sweepd: lease release %s: %v\n", l.Key()[:12], err)
	}
}

// warnPut logs a failed store write. The store itself latches into
// degraded (memory-only) mode on environmental failures — disk full,
// read-only filesystem — so the sweep keeps its in-memory memo tier
// and finishes; the once-per-process warning makes the lost durability
// impossible to miss in the log.
func (s *Server) warnPut(err error) {
	fmt.Fprintf(s.opts.Log, "sweepd: cache write failed: %v\n", err)
	if s.disk != nil && s.disk.Degraded() {
		s.degradedWarn.Do(func() {
			fmt.Fprintf(s.opts.Log, "sweepd: WARNING: store degraded to memory-only memoization; finished cells are no longer durable and peers cannot see them\n")
		})
	}
}

// runCell performs the actual simulation with the cell deadline and
// the drain-abort flag folded into one polled cancel hook. The hook is
// latched: only a run the simulator actually truncated reports an
// error — a run that finished just before its deadline is a result.
func (s *Server) runCell(c *cell) (hetsim.Results, error) {
	cfg := c.cfg
	var deadline time.Time
	if s.opts.CellTimeout > 0 {
		deadline = time.Now().Add(s.opts.CellTimeout)
	}
	var tripped atomic.Bool
	cfg.Cancel = func() bool {
		if s.aborting.Load() {
			tripped.Store(true)
			return true
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			tripped.Store(true)
			return true
		}
		return false
	}
	var res hetsim.Results
	if c.key.Pair {
		var err error
		res, err = hetsim.RunPair(cfg, c.Bench, c.scale)
		if err != nil {
			return hetsim.Results{}, err
		}
	} else {
		sys, err := hetsim.NewSystem(cfg, c.Bench)
		if err != nil {
			return hetsim.Results{}, err
		}
		res = sys.Run(c.scale)
	}
	if tripped.Load() {
		if s.aborting.Load() {
			return hetsim.Results{}, fmt.Errorf("sweepd: run aborted by drain deadline")
		}
		return hetsim.Results{}, fmt.Errorf("sweepd: run exceeded cell deadline %v", s.opts.CellTimeout)
	}
	return res, nil
}

// complete records the finished cell and publishes its epoch series to
// any live /epochs streams.
func (s *Server) complete(j *job, c *cell, res hetsim.Results, err error) {
	state := "done"
	if err != nil {
		state = "failed"
		if errors.Is(err, errPoisoned) {
			state = "poisoned"
		}
	}
	c.mu.Lock()
	c.state = state
	if err != nil {
		c.errMsg = err.Error()
	} else {
		c.header = res.CSVHeader()
		c.row = res.CSVRow()
	}
	c.mu.Unlock()

	var chunk []byte
	if err == nil && res.Epochs != nil {
		// The cell identity is spliced into every JSONL record through
		// the same extra-column path the CLI sinks use, so a stream
		// carrying many cells stays self-describing line by line.
		var buf bytes.Buffer
		if werr := res.Epochs.WriteJSONL(&buf,
			[]string{"job", "bench", "param", "value"},
			[]string{j.ID, c.Bench, j.Spec.Param, c.Value}); werr == nil {
			chunk = buf.Bytes()
		} else {
			fmt.Fprintf(s.opts.Log, "sweepd: epoch encode failed: %v\n", werr)
		}
	}

	j.mu.Lock()
	switch state {
	case "done":
		j.done++
	case "poisoned":
		j.poisoned++
	default:
		j.failed++
	}
	j.epochLog = append(j.epochLog, chunk...)
	j.mu.Unlock()
	j.cond.Broadcast()
}

// Status is the wire form of a job's progress.
type Status struct {
	ID     string  `json:"id"`
	Spec   JobSpec `json:"spec"`
	State  string  `json:"state"` // "running" | "done" | "failed"
	Total  int     `json:"total"`
	Done   int     `json:"done"`
	Failed int     `json:"failed"`
	// Poisoned counts cells that exhausted their retry budget; they are
	// final (never retried) and make the job "failed".
	Poisoned int `json:"poisoned,omitempty"`
	// Executed and Restored are server-lifetime counters: cells that
	// ran the simulator vs cells served from the durable store.
	Executed uint64   `json:"executed"`
	Restored uint64   `json:"restored"`
	Errors   []string `json:"errors,omitempty"`
}

func (s *Server) status(j *job) Status {
	j.mu.Lock()
	done, failed, poisoned := j.done, j.failed, j.poisoned
	j.mu.Unlock()
	st := Status{
		ID: j.ID, Spec: j.Spec, State: "running",
		Total: len(j.Cells), Done: done, Failed: failed, Poisoned: poisoned,
		Executed: s.executed.Load(), Restored: s.restored.Load(),
	}
	if done+failed+poisoned == len(j.Cells) {
		if failed+poisoned > 0 {
			st.State = "failed"
		} else {
			st.State = "done"
		}
	}
	for _, c := range j.Cells {
		c.mu.Lock()
		if c.errMsg != "" {
			st.Errors = append(st.Errors, fmt.Sprintf("%s value=%q: %s", c.Bench, c.Value, c.errMsg))
		}
		c.mu.Unlock()
	}
	return st
}

// Health is the wire form of /healthz and /readyz.
type Health struct {
	OK       bool   `json:"ok"`
	Owner    string `json:"owner"`
	Draining bool   `json:"draining"`
	// StoreWritable probes the objects tree with a real write; the
	// probe also heals the degraded latch when the disk recovers.
	StoreWritable bool `json:"store_writable"`
	StoreDegraded bool `json:"store_degraded"`
	// LiveLeases counts unexpired leases in the shared directory (all
	// owners); HeldByPeers counts the ones not ours.
	LiveLeases  int `json:"live_leases"`
	HeldByPeers int `json:"held_by_peers"`
	// QueueDepth is the number of unfinished cells across all jobs.
	QueueDepth int `json:"queue_depth"`
	Jobs       int `json:"jobs"`
}

func (s *Server) health() Health {
	h := Health{Owner: s.leases.Owner(), Draining: s.closed.Load()}
	if s.disk != nil {
		h.StoreWritable = s.disk.Writable()
		h.StoreDegraded = s.disk.Degraded()
	} else {
		h.StoreWritable = true // injected cache: nothing to probe
	}
	for _, owner := range s.leases.Holders() {
		h.LiveLeases++
		if owner != s.leases.Owner() {
			h.HeldByPeers++
		}
	}
	s.mu.Lock()
	h.Jobs = len(s.jobs)
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.mu.Lock()
		h.QueueDepth += len(j.Cells) - j.done - j.failed - j.poisoned
		j.mu.Unlock()
	}
	h.OK = !h.Draining && h.StoreWritable
	return h
}

// Handler builds the HTTP API:
//
//	POST /api/v1/sweeps              submit a JobSpec (idempotent)
//	GET  /api/v1/sweeps              list job statuses
//	GET  /api/v1/sweeps/{id}         one job's status
//	GET  /api/v1/sweeps/{id}/results.csv   summary CSV (?wait=1 blocks)
//	GET  /api/v1/sweeps/{id}/epochs  live per-epoch JSONL stream
//	GET  /healthz                    liveness + store/lease/queue detail
//	GET  /readyz                     200 while serving, 503 once draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/sweeps", s.handleList)
	mux.HandleFunc("GET /api/v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/results.csv", s.handleResults)
	mux.HandleFunc("GET /api/v1/sweeps/{id}/epochs", s.handleEpochs)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.health())
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	h := s.health()
	w.Header().Set("Content-Type", "application/json")
	if h.Draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		http.Error(w, errClosed.Error(), http.StatusServiceUnavailable)
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&spec); err != nil {
		http.Error(w, "bad spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	j, err := s.submit(spec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(s.status(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].ID < jobs[k].ID })
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = s.status(j)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (s *Server) lookup(r *http.Request) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.status(j))
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		http.NotFound(w, r)
		return
	}
	if r.URL.Query().Get("wait") == "1" {
		j.mu.Lock()
		for !j.finished() {
			j.cond.Wait()
		}
		j.mu.Unlock()
	}
	w.Header().Set("Content-Type", "text/csv")
	cw := csv.NewWriter(w)
	wroteHeader := false
	for _, c := range j.Cells {
		c.mu.Lock()
		state, header, row := c.state, c.header, c.row
		bench, value := c.Bench, c.Value
		c.mu.Unlock()
		if state != "done" {
			continue
		}
		if !wroteHeader {
			cw.Write(append([]string{"param", "value", "bench"}, header...))
			wroteHeader = true
		}
		cw.Write(append([]string{j.Spec.Param, value, bench}, row...))
	}
	cw.Flush()
}

// handleEpochs streams the job's per-epoch JSONL live: whatever has
// accumulated is sent immediately, then the stream follows cell
// completions and closes when the grid is finished.
func (s *Server) handleEpochs(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r)
	if j == nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	flusher, _ := w.(http.Flusher)

	// Wake the waiter when the client goes away so the handler's
	// goroutine doesn't outlive the connection.
	done := r.Context().Done()
	go func() {
		<-done
		j.cond.Broadcast()
	}()

	off := 0
	for {
		j.mu.Lock()
		for off == len(j.epochLog) && !j.finished() {
			select {
			case <-done:
				j.mu.Unlock()
				return
			default:
			}
			j.cond.Wait()
		}
		chunk := j.epochLog[off:]
		off = len(j.epochLog)
		fin := j.finished()
		j.mu.Unlock()

		if len(chunk) > 0 {
			if _, err := w.Write(chunk); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if fin {
			return
		}
	}
}
