package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// validTrace is a three-record trace: one fast-served demand fill, one
// slow-path demand fill, and one prefetch.
const validTrace = `born,done,crit_at,line_addr,miss_word,crit_word,store,prefetch,parity
100,300,150,64,0,0,0,0,0
400,700,450,65,3,0,0,0,0
800,1000,850,66,0,0,0,1,0
`

// goldenReport is the exact expected output for validTrace. Keeping it
// literal pins the report format CLI consumers parse.
const goldenReport = `records            3
  demand           2
  store fills      0
  prefetches       1
served fast        1 (50.0%)
parity held        0
mean fill latency  233.3 cycles
mean crit latency  175.0 cycles
critical word distribution (demand fills):
  w0       1   50.0%
  w1       0    0.0%
  w2       0    0.0%
  w3       1   50.0%
  w4       0    0.0%
  w5       0    0.0%
  w6       0    0.0%
  w7       0    0.0%
`

// writeTemp writes content to a file under t.TempDir.
func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunGoldenOutput(t *testing.T) {
	path := writeTemp(t, "trace.csv", validTrace)
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != exitOK {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	if got := stdout.String(); got != goldenReport {
		t.Errorf("report mismatch:\n--- got ---\n%s--- want ---\n%s", got, goldenReport)
	}
}

func TestRunMalformedTrace(t *testing.T) {
	cases := map[string]string{
		"bad header":     "nope,done\n1,2\n",
		"non-numeric":    "born,done,crit_at,line_addr,miss_word,crit_word,store,prefetch,parity\nxx,2,3,4,5,6,0,0,0\n",
		"missing fields": "born,done,crit_at,line_addr,miss_word,crit_word,store,prefetch,parity\n1,2,3\n",
	}
	for name, content := range cases {
		t.Run(name, func(t *testing.T) {
			path := writeTemp(t, "bad.csv", content)
			var stdout, stderr bytes.Buffer
			if code := run([]string{path}, &stdout, &stderr); code != exitError {
				t.Fatalf("exit = %d, want %d", code, exitError)
			}
			if !strings.Contains(stderr.String(), "tracestat:") {
				t.Errorf("stderr lacks diagnostic: %q", stderr.String())
			}
		})
	}
}

func TestRunMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{filepath.Join(t.TempDir(), "absent.csv")}, &stdout, &stderr); code != exitError {
		t.Fatalf("exit = %d, want %d", code, exitError)
	}
}

func TestRunUsage(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != exitUsage {
		t.Fatalf("exit = %d, want %d", code, exitUsage)
	}
	if !strings.Contains(stderr.String(), "usage:") {
		t.Errorf("stderr lacks usage: %q", stderr.String())
	}
}
