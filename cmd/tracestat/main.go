// Command tracestat summarizes a fill trace produced by
// hetsim -trace: per-word critical distribution, fast-path coverage and
// latency statistics.
//
// Usage:
//
//	hetsim -bench mcf -config rl-ad -scale bench -trace mcf.csv
//	tracestat mcf.csv
package main

import (
	"fmt"
	"io"
	"os"

	"hetsim/internal/trace"
)

// exit codes: 0 success, 1 runtime error (unreadable/malformed trace),
// 2 usage error.
const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

// run executes tracestat for args (excluding the program name), writing
// the report to stdout and diagnostics to stderr; it returns the
// process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		fmt.Fprintln(stderr, "usage: tracestat <trace.csv>")
		return exitUsage
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintln(stderr, "tracestat:", err)
		return exitError
	}
	defer f.Close()

	recs, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(stderr, "tracestat:", err)
		return exitError
	}
	report(stdout, trace.Summarize(recs))
	return exitOK
}

// report formats a trace summary.
func report(w io.Writer, s trace.Summary) {
	fmt.Fprintf(w, "records            %d\n", s.Fills)
	fmt.Fprintf(w, "  demand           %d\n", s.Demand)
	fmt.Fprintf(w, "  store fills      %d\n", s.Stores)
	fmt.Fprintf(w, "  prefetches       %d\n", s.Prefetches)
	if s.Demand > 0 {
		fmt.Fprintf(w, "served fast        %d (%.1f%%)\n", s.ServedFast,
			100*float64(s.ServedFast)/float64(s.Demand))
	}
	fmt.Fprintf(w, "parity held        %d\n", s.ParityHeld)
	fmt.Fprintf(w, "mean fill latency  %.1f cycles\n", s.MeanFillLat)
	fmt.Fprintf(w, "mean crit latency  %.1f cycles\n", s.MeanCritLat)
	fmt.Fprintln(w, "critical word distribution (demand fills):")
	for w2, c := range s.WordHistogram {
		frac := 0.0
		if s.Demand > 0 {
			frac = 100 * float64(c) / float64(s.Demand)
		}
		fmt.Fprintf(w, "  w%d %7d  %5.1f%%\n", w2, c, frac)
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
