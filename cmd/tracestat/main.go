// Command tracestat summarizes a fill trace produced by
// hetsim -trace: per-word critical distribution, fast-path coverage and
// latency statistics.
//
// Usage:
//
//	hetsim -bench mcf -config rl-ad -scale bench -trace mcf.csv
//	tracestat mcf.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"hetsim/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracestat <trace.csv>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	defer f.Close()

	recs, err := trace.Read(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	s := trace.Summarize(recs)
	fmt.Printf("records            %d\n", s.Fills)
	fmt.Printf("  demand           %d\n", s.Demand)
	fmt.Printf("  store fills      %d\n", s.Stores)
	fmt.Printf("  prefetches       %d\n", s.Prefetches)
	if s.Demand > 0 {
		fmt.Printf("served fast        %d (%.1f%%)\n", s.ServedFast,
			100*float64(s.ServedFast)/float64(s.Demand))
	}
	fmt.Printf("parity held        %d\n", s.ParityHeld)
	fmt.Printf("mean fill latency  %.1f cycles\n", s.MeanFillLat)
	fmt.Printf("mean crit latency  %.1f cycles\n", s.MeanCritLat)
	fmt.Println("critical word distribution (demand fills):")
	for w, c := range s.WordHistogram {
		frac := 0.0
		if s.Demand > 0 {
			frac = 100 * float64(c) / float64(s.Demand)
		}
		fmt.Printf("  w%d %7d  %5.1f%%\n", w, c, frac)
	}
}
