// Command experiments regenerates the paper's tables and figures and
// prints a paper-vs-measured summary.
//
// Usage:
//
//	experiments                      # everything, bench scale, full suite
//	experiments -only fig6,fig10     # a subset of experiments
//	experiments -scale paper         # §5-sized runs (2M reads; slow)
//	experiments -benchmarks mcf,lbm  # a subset of workloads
//	experiments -j 8                 # run up to 8 simulations in parallel
//	experiments -only faults         # fault-sensitivity table (opt-in)
//	experiments -faults "crit.bit=1e-4; line.bit=1e-4" -fault-seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hetsim"
	"hetsim/internal/exp"
	"hetsim/internal/grid"
	"hetsim/internal/profiling"
	"hetsim/internal/sim"
	"hetsim/internal/store"
)

func main() {
	scaleName := flag.String("scale", "bench", "run scale: quick|test|bench|paper")
	benches := flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
	only := flag.String("only", "", "comma-separated experiment subset (default: all)")
	cores := flag.Int("cores", 8, "core count")
	seed := flag.Uint64("seed", 1, "workload seed")
	measure := flag.Uint64("measure", 0, "override measured DRAM reads per run (0 = scale default)")
	workers := flag.Int("j", 0, "parallel simulation runs (0 = GOMAXPROCS, 1 = serial; results are identical)")
	cacheDir := flag.String("cache-dir", "", "durable run cache directory: hit entries replace simulations, output stays byte-identical")
	cacheMax := flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries past this total size (0 = unlimited; needs -cache-dir)")
	parallel := flag.Bool("parallel", false, "run crit/line channel controllers on separate goroutines where the organization permits (output is byte-identical)")
	faultSpec := flag.String("faults", "", `fault environment applied to every run, e.g. "crit.bit=1e-4; line.bit=1e-4; @1000 chipkill line 0 3"`)
	faultSeed := flag.Uint64("fault-seed", 0, "override the fault-injection RNG seed (with -faults)")
	verbose := flag.Bool("v", false, "log each run")
	topoFlag := flag.String("topology", "", "comma-separated topology names or specs to study against the baseline (e.g. \"dram-cache,crit:rldram3x4+line:lpddr2x4\"); implies -only topologies")
	epochInterval := flag.Int64("epoch-interval", 0, "sample telemetry every N cycles of each measured window (0 = off)")
	epochCSV := flag.String("epoch-csv", "", "write the per-epoch time-series as CSV to this file (needs -epoch-interval)")
	epochJSONL := flag.String("epoch-jsonl", "", "write the per-epoch time-series as JSON lines to this file (needs -epoch-interval)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()
	start := time.Now()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer stopProf()

	var scale hetsim.Scale
	switch *scaleName {
	case "quick":
		scale = hetsim.QuickScale()
	case "test":
		scale = hetsim.TestScale()
	case "bench":
		scale = hetsim.BenchScale()
	case "paper":
		scale = hetsim.PaperScale()
	default:
		fmt.Fprintln(os.Stderr, "experiments: unknown scale", *scaleName)
		os.Exit(2)
	}

	// Resolve -topology before anything runs so a typo fails fast.
	var topoCfgs []hetsim.Config
	for _, item := range strings.Split(*topoFlag, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		cfg, err := topoConfig(item)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		topoCfgs = append(topoCfgs, cfg)
	}

	if *measure > 0 {
		scale.MeasureReads = *measure
		scale.WarmupReads = *measure / 10
		scale.MaxCycles = 1 << 40
	}
	if (*epochCSV != "" || *epochJSONL != "") && *epochInterval <= 0 {
		fmt.Fprintln(os.Stderr, "experiments: -epoch-csv/-epoch-jsonl need -epoch-interval > 0")
		os.Exit(2)
	}
	scale.EpochInterval = sim.Cycle(*epochInterval)
	opts := exp.Options{Scale: scale, NCores: *cores, Seed: *seed,
		Workers: *workers, Parallel: *parallel}
	var cache *store.Store
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		st.SetMaxBytes(*cacheMax)
		opts.Store = st
		cache = st
	}
	if *faultSpec != "" {
		fc, err := hetsim.ParseFaults(*faultSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		if *faultSeed != 0 {
			fc.Seed = *faultSeed
		}
		opts.Faults = fc
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	r := exp.NewRunner(opts)

	want := map[string]bool{}
	if *only != "" {
		for _, e := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}
	// -topology without -only means "study just these topologies".
	if *topoFlag != "" && len(want) == 0 {
		want["topologies"] = true
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", name, err)
		os.Exit(1)
	}
	var summary []string
	note := func(s string) { summary = append(summary, s) }

	if sel("table1") {
		fmt.Println(exp.Table1())
	}
	if sel("table2") {
		fmt.Println(exp.Table2())
	}
	if sel("workloads") {
		fmt.Println(exp.WorkloadTable())
	}
	if sel("fig1a") {
		res, err := exp.Fig1a(r)
		if err != nil {
			fail("fig1a", err)
		}
		fmt.Println(res.Table)
		fmt.Println(res.Chart())
		note(exp.FormatSummary("Fig1a RLDRAM3 homogeneous gain", 0.31, res.MeanRLD-1))
		note(exp.FormatSummary("Fig1a LPDDR2 homogeneous loss", -0.13, res.MeanLP-1))
	}
	if sel("fig1b") {
		res, err := exp.Fig1b(r)
		if err != nil {
			fail("fig1b", err)
		}
		fmt.Println(res.Table)
		base := res.Queue["DDR3-baseline"] + res.Core["DDR3-baseline"] + res.Xfer["DDR3-baseline"]
		rld := res.Queue["RLDRAM3-homog"] + res.Core["RLDRAM3-homog"] + res.Xfer["RLDRAM3-homog"]
		if base > 0 {
			note(exp.FormatSummary("Fig1b RLDRAM3 latency reduction", -0.43, rld/base-1))
		}
	}
	if sel("fig2") {
		fmt.Println(exp.Fig2().Table)
	}
	if sel("fig3") {
		res, err := exp.Fig3(r, 8)
		if err != nil {
			fail("fig3", err)
		}
		fmt.Println(res.Table)
	}
	if sel("fig4") {
		res, err := exp.Fig4(r)
		if err != nil {
			fail("fig4", err)
		}
		fmt.Println(res.Table)
		note(fmt.Sprintf("%-34s paper 21/27 >50%%; mean 67%%  measured %d/%d; mean %.0f%%",
			"Fig4 word-0 dominance", res.Word0Count, len(r.Opts.Benchmarks), res.MeanWord0*100))
	}
	if sel("fig6") {
		res, err := exp.Fig6(r)
		if err != nil {
			fail("fig6", err)
		}
		fmt.Println(res.Table)
		fmt.Println(res.RLChart())
		note(exp.FormatSummary("Fig6 RD throughput gain", 0.21, res.MeanRD-1))
		note(exp.FormatSummary("Fig6 RL throughput gain", 0.129, res.MeanRL-1))
		note(exp.FormatSummary("Fig6 DL throughput loss", -0.09, res.MeanDL-1))
	}
	if sel("fig7") {
		res, err := exp.Fig7(r)
		if err != nil {
			fail("fig7", err)
		}
		fmt.Println(res.Table)
		note(exp.FormatSummary("Fig7 RD crit latency reduction", -0.30, -res.ReductionRD))
		note(exp.FormatSummary("Fig7 RL crit latency reduction", -0.22, -res.ReductionRL))
	}
	if sel("fig8") {
		res, err := exp.Fig8(r)
		if err != nil {
			fail("fig8", err)
		}
		fmt.Println(res.Table)
		note(exp.FormatSummary("Fig8 served by RLDRAM3 (mean)", 0.67, res.Mean))
	}
	if sel("fig9") {
		res, err := exp.Fig9(r)
		if err != nil {
			fail("fig9", err)
		}
		fmt.Println(res.Table)
		note(exp.FormatSummary("Fig9 RL-AD gain", 0.157, res.MeanAD-1))
		note(exp.FormatSummary("Fig9 RL-OR gain", 0.28, res.MeanOR-1))
	}
	if sel("fig10") {
		res, err := exp.Fig10(r)
		if err != nil {
			fail("fig10", err)
		}
		fmt.Println(res.Table)
		note(exp.FormatSummary("Fig10 RL system energy", -0.06, res.MeanRL-1))
		note(exp.FormatSummary("Fig10 DL system energy", -0.13, res.MeanDL-1))
		note(exp.FormatSummary("Fig10 RL memory energy", -0.15, res.MeanRLMemEnergy-1))
	}
	if sel("fig11") {
		res, err := exp.Fig11(r)
		if err != nil {
			fail("fig11", err)
		}
		fmt.Println(res.Table)
		note(fmt.Sprintf("%-34s paper: savings grow with util  measured: high-util minus low-util = %+.1f%%",
			"Fig11 trend", res.HighMinusLow*100))
	}
	if sel("random") {
		res, err := exp.RandomMapping(r)
		if err != nil {
			fail("random", err)
		}
		fmt.Println(res.Table)
		note(exp.FormatSummary("§6.1.1 random mapping gain", 0.021, res.Mean-1))
	}
	if sel("noprefetch") {
		res, err := exp.NoPrefetcher(r)
		if err != nil {
			fail("noprefetch", err)
		}
		fmt.Println(res.Table)
		note(exp.FormatSummary("§6.1.1 RL gain w/ prefetcher", 0.129, res.MeanWith-1))
		note(exp.FormatSummary("§6.1.1 RL gain w/o prefetcher", 0.173, res.MeanWithout-1))
	}
	if sel("reusegap") {
		res, err := exp.ReuseGap(r)
		if err != nil {
			fail("reusegap", err)
		}
		fmt.Println(res.Table)
	}
	if sel("pageplacement") {
		res, err := exp.PagePlacement(r)
		if err != nil {
			fail("pageplacement", err)
		}
		fmt.Println(res.Table)
		note(exp.FormatSummary("§7.1 page placement gain", 0.08, res.Mean-1))
	}
	if sel("cmdbus") {
		res, err := exp.CmdBusAblation(r)
		if err != nil {
			fail("cmdbus", err)
		}
		fmt.Println(res.Table)
		note(fmt.Sprintf("%-34s paper: shared bus bottlenecks RL-OR  measured: private-shared = %+.1f%%",
			"§4.2.4 cmd bus ablation", (res.MeanPrivate-res.MeanShared)*100))
	}
	if sel("subrank") {
		res, err := exp.SubRankAblation(r)
		if err != nil {
			fail("subrank", err)
		}
		fmt.Println(res.Table)
		note(fmt.Sprintf("%-34s paper: narrow ranks cut energy & queueing  measured perf n/w = %.3f/%.3f",
			"§4.2.4 sub-rank ablation", res.MeanNarrowPerf, res.MeanWidePerf))
	}
	if sel("malladi") {
		res, err := exp.Malladi(r)
		if err != nil {
			fail("malladi", err)
		}
		fmt.Println(res.Table)
		note(exp.FormatSummary("§7.2 Malladi system energy", -0.261, res.MeanEnergy-1))
	}

	if sel("policies") {
		res, err := exp.SchedulerPolicies(r)
		if err != nil {
			fail("policies", err)
		}
		fmt.Println(res.Table)
		note(fmt.Sprintf("%-34s paper: FR-FCFS + open page chosen  measured: fcfs %.3f, close-page %.3f",
			"§5 controller policies", res.MeanFCFS, res.MeanClosePage))
	}
	if sel("mapping") {
		res, err := exp.AddressMapping(r)
		if err != nil {
			fail("mapping", err)
		}
		fmt.Println(res.Table)
		note(fmt.Sprintf("%-34s paper: open-row is the best baseline  measured: xor %.3f, bank-first %.3f",
			"§5 address interleaving", res.Means["xor-permuted"], res.Means["bank-first"]))
	}
	if sel("rob") {
		res, err := exp.ROBSensitivity(r, nil)
		if err != nil {
			fail("rob", err)
		}
		fmt.Println(res.Table)
	}
	if sel("hmc") {
		res, err := exp.FutureHMC(r)
		if err != nil {
			fail("hmc", err)
		}
		fmt.Println(res.Table)
		note(fmt.Sprintf("%-34s paper: future-work sketch  measured RL %.3f vs HMC %.3f",
			"§10 heterogeneous HMC", res.MeanRL, res.MeanHMC))
	}

	// The topology study is opt-in (it goes beyond the paper's
	// evaluation): run it when -topology is given or "topologies" is
	// named in -only, so the default output stays byte-identical.
	if want["topologies"] {
		res, err := exp.Topologies(r, topoCfgs)
		if err != nil {
			fail("topologies", err)
		}
		fmt.Println(res.Table)
		for _, name := range res.Names {
			note(fmt.Sprintf("%-34s beyond the paper  measured %.3f",
				"topology "+name, res.Means[name]))
		}
	}

	// The fault-sensitivity sweep is opt-in (it is not part of the
	// paper's evaluation): run it only when named explicitly in -only,
	// so the default output stays byte-identical.
	if want["faults"] {
		res, err := exp.FaultSensitivity(r)
		if err != nil {
			fail("faults", err)
		}
		fmt.Println(res.Table)
		if n := len(res.Gains); n > 0 {
			note(fmt.Sprintf("%-34s dead-crit retains %.0f%% of clean RL throughput",
				"fault sensitivity", res.Gains[n-1]*100))
		}
	}

	if len(summary) > 0 {
		fmt.Println("==== paper vs measured ====")
		for _, s := range summary {
			fmt.Println(s)
		}
	}
	if *epochCSV != "" {
		if err := writeEpochs(*epochCSV, r.WriteEpochCSV); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	if *epochJSONL != "" {
		if err := writeEpochs(*epochJSONL, r.WriteEpochJSONL); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if cache != nil {
		cs := cache.Stats()
		fmt.Fprintf(os.Stderr, "experiments: cache %s: %d hits, %d misses, %d writes, %d corrupt\n",
			*cacheDir, cs.Hits, cs.Misses, cs.Writes, cs.Corrupt)
	}
	st := r.Stats()
	fmt.Fprintf(os.Stderr, "experiments: %d runs (%d deduped) on %d workers in %.1fs\n",
		st.Executed, st.Deduped, r.Workers(), time.Since(start).Seconds())
}

// topoConfig resolves one -topology item: a grid config name (so
// "dram-cache" and "hmc-mix" get their presets) or a topology name /
// raw spec applied on top of the baseline machine.
func topoConfig(item string) (hetsim.Config, error) {
	if cfg, err := grid.Config(item, 0); err == nil {
		return cfg, nil
	}
	cfg := hetsim.Baseline(0)
	if err := grid.ApplyTopology(&cfg, item); err != nil {
		return hetsim.Config{}, err
	}
	return cfg, nil
}

// writeEpochs dumps the runner's recorded epoch series to a file.
func writeEpochs(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
