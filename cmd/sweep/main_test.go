package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// sweepArgs is a small but real grid: two ROB sizes × one benchmark,
// epoch sampling on, test scale shrunk via the reads axis to keep the
// run fast.
func sweepArgs(dir, cacheDir string, j string) []string {
	args := []string{
		"-bench", "libquantum", "-config", "rl",
		"-param", "robsize", "-values", "32,64",
		"-scale", "test",
		"-epoch-interval", "50000",
		"-epoch-csv", filepath.Join(dir, "epochs.csv"),
		"-epoch-jsonl", filepath.Join(dir, "epochs.jsonl"),
		"-j", j,
	}
	if cacheDir != "" {
		args = append(args, "-cache-dir", cacheDir)
	}
	return args
}

// runSweep performs one full in-process invocation, returning stdout,
// stderr, and the two epoch file contents.
func runSweep(t *testing.T, cacheDir, j string) (stdout, stderr, epochCSV, epochJSONL string) {
	t.Helper()
	dir := t.TempDir()
	var out, errb bytes.Buffer
	if err := run(sweepArgs(dir, cacheDir, j), &out, &errb); err != nil {
		t.Fatalf("sweep failed: %v\nstderr: %s", err, errb.String())
	}
	csvB, err := os.ReadFile(filepath.Join(dir, "epochs.csv"))
	if err != nil {
		t.Fatal(err)
	}
	jsonlB, err := os.ReadFile(filepath.Join(dir, "epochs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), string(csvB), string(jsonlB)
}

var cacheLine = regexp.MustCompile(`sweep: cache .*: (\d+) hits, (\d+) misses, (\d+) writes, (\d+) corrupt`)

// TestSweepCacheEquivalence is the acceptance gate for the durable
// cache: a repeated invocation with -cache-dir performs zero simulator
// runs on the second pass and produces byte-identical stdout CSV,
// epoch CSV, and epoch JSONL.
func TestSweepCacheEquivalence(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")

	// Reference: no cache at all.
	refOut, _, refECSV, refEJSONL := runSweep(t, "", "2")

	// Cold: populates the cache; output must match the cache-free run.
	coldOut, coldErr, coldECSV, coldEJSONL := runSweep(t, cacheDir, "2")
	if coldOut != refOut || coldECSV != refECSV || coldEJSONL != refEJSONL {
		t.Fatal("-cache-dir changed the cold run's output")
	}
	m := cacheLine.FindStringSubmatch(coldErr)
	if m == nil {
		t.Fatalf("no cache summary on stderr:\n%s", coldErr)
	}
	if m[1] != "0" || m[2] != "2" || m[3] != "2" {
		t.Fatalf("cold pass should be 0 hits / 2 misses / 2 writes, got %v", m[1:])
	}

	// Warm: all hits, zero runs, byte-identical everywhere.
	warmOut, warmErr, warmECSV, warmEJSONL := runSweep(t, cacheDir, "8")
	if warmOut != coldOut {
		t.Fatalf("warm stdout diverged:\ncold:\n%s\nwarm:\n%s", coldOut, warmOut)
	}
	if warmECSV != coldECSV {
		t.Fatal("warm epoch CSV diverged")
	}
	if warmEJSONL != coldEJSONL {
		t.Fatal("warm epoch JSONL diverged")
	}
	m = cacheLine.FindStringSubmatch(warmErr)
	if m == nil {
		t.Fatalf("no cache summary on stderr:\n%s", warmErr)
	}
	if m[1] != "2" || m[2] != "0" || m[3] != "0" {
		t.Fatalf("warm pass should be 2 hits / 0 misses / 0 writes (zero simulator runs), got %v", m[1:])
	}
	if !strings.Contains(warmOut, "robsize") {
		t.Fatal("output lost the summary CSV")
	}
}

// TestSweepBadFlags pins clean error paths (no os.Exit in run).
func TestSweepBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run([]string{"-config", "warp9"}, &out, &errb); err == nil {
		t.Fatal("unknown config accepted")
	}
	if err := run([]string{"-epoch-csv", "x.csv"}, &out, &errb); err == nil {
		t.Fatal("-epoch-csv without -epoch-interval accepted")
	}
	if err := run([]string{"-param", "warp", "-values", "1"}, &out, &errb); err == nil {
		t.Fatal("unknown param accepted")
	}
}
