// Command sweep runs one memory configuration across a parameter grid
// and emits a CSV of results — the workhorse for sensitivity studies
// beyond the canned experiments.
//
// Usage:
//
//	sweep -bench libquantum -config rl -param robsize -values 16,32,64,128
//	sweep -bench mcf -config rl -param parityrate -values 0,0.01,0.1,1
//	sweep -bench leslie3d -config baseline -param cores -values 1,2,4,8
//	sweep -bench mg -config rl -param reads -values 5000,20000,80000
//	sweep -bench mcf -config rl -param faultrate -values 0,1e-4,1e-3,1e-2
//	sweep ... -faults "@1000 dead crit" -fault-seed 7
//	sweep ... -j 4                 # run grid points in parallel
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hetsim"
	"hetsim/internal/profiling"
	"hetsim/internal/runpool"
)

func main() {
	bench := flag.String("bench", "libquantum", "benchmark name")
	config := flag.String("config", "rl", "configuration (see cmd/hetsim)")
	param := flag.String("param", "robsize", "swept parameter: robsize|cores|parityrate|faultrate|reads")
	values := flag.String("values", "32,64,128", "comma-separated values")
	scaleName := flag.String("scale", "test", "base run scale: test|bench|paper")
	out := flag.String("o", "", "output CSV path (default stdout)")
	pair := flag.Bool("pair", false, "run the stand-alone reference too (fills throughput columns)")
	faultSpec := flag.String("faults", "", `fault environment applied to every grid point, e.g. "line.bit=1e-4; @1000 chipkill line 0 3"`)
	faultSeed := flag.Uint64("fault-seed", 0, "override the fault-injection RNG seed")
	workers := flag.Int("j", 0, "parallel grid points (0 = GOMAXPROCS, 1 = serial; output is identical)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var scale hetsim.Scale
	switch *scaleName {
	case "test":
		scale = hetsim.TestScale()
	case "bench":
		scale = hetsim.BenchScale()
	case "paper":
		scale = hetsim.PaperScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()

	// Build every grid point first, then fan the runs across the pool
	// and collect rows in grid order, so the CSV is byte-identical at
	// any -j.
	var vals []string
	for _, vs := range strings.Split(*values, ",") {
		vals = append(vals, strings.TrimSpace(vs))
	}
	var baseFaults hetsim.FaultConfig
	if *faultSpec != "" {
		fc, err := hetsim.ParseFaults(*faultSpec)
		if err != nil {
			fatal(err)
		}
		baseFaults = fc
	}
	if *faultSeed != 0 {
		baseFaults.Seed = *faultSeed
	}

	pool := runpool.New[int, hetsim.Results](*workers)
	tasks := make([]*runpool.Task[hetsim.Results], len(vals))
	for i, vs := range vals {
		cfg, err := baseConfig(*config, 8)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = baseFaults
		runScale := scale
		switch strings.ToLower(*param) {
		case "robsize":
			n, err := strconv.Atoi(vs)
			if err != nil {
				fatal(err)
			}
			cfg.ROBSize = n
		case "cores":
			n, err := strconv.Atoi(vs)
			if err != nil {
				fatal(err)
			}
			cfg.NCores = n
		case "parityrate":
			p, err := strconv.ParseFloat(vs, 64)
			if err != nil {
				fatal(err)
			}
			cfg.CritParityErrorRate = p
		case "faultrate":
			p, err := strconv.ParseFloat(vs, 64)
			if err != nil {
				fatal(err)
			}
			// A uniform transient-bit rate on both DIMM classes: the
			// headline fault-sensitivity axis.
			cfg.Faults.Crit.TransientBit = p
			cfg.Faults.Line.TransientBit = p
		case "reads":
			n, err := strconv.ParseUint(vs, 10, 64)
			if err != nil {
				fatal(err)
			}
			runScale.MeasureReads = n
			runScale.WarmupReads = n / 10
		default:
			fatal(fmt.Errorf("unknown parameter %q", *param))
		}
		cfg.Name = fmt.Sprintf("%s[%s=%s]", cfg.Name, *param, vs)

		tasks[i] = pool.Submit(i, func() (hetsim.Results, error) {
			if *pair {
				return hetsim.RunPair(cfg, *bench, runScale)
			}
			sys, err := hetsim.NewSystem(cfg, *bench)
			if err != nil {
				return hetsim.Results{}, err
			}
			return sys.Run(runScale), nil
		})
	}

	wroteHeader := false
	for i, vs := range vals {
		res, err := tasks[i].Wait()
		if err != nil {
			fatal(err)
		}
		if !wroteHeader {
			if err := cw.Write(append([]string{"param", "value"}, res.CSVHeader()...)); err != nil {
				fatal(err)
			}
			wroteHeader = true
		}
		if err := cw.Write(append([]string{*param, vs}, res.CSVRow()...)); err != nil {
			fatal(err)
		}
	}
}

// baseConfig mirrors cmd/hetsim's configuration names.
func baseConfig(name string, cores int) (hetsim.Config, error) {
	switch strings.ToLower(name) {
	case "baseline", "ddr3":
		return hetsim.Baseline(cores), nil
	case "lpddr2":
		return hetsim.HomogeneousLPDDR2(cores), nil
	case "rldram3":
		return hetsim.HomogeneousRLDRAM3(cores), nil
	case "rd":
		return hetsim.RD(cores), nil
	case "rl":
		return hetsim.RL(cores), nil
	case "dl":
		return hetsim.DL(cores), nil
	case "hmc":
		return hetsim.HMCHetero(cores), nil
	default:
		return hetsim.Config{}, fmt.Errorf("unknown config %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
