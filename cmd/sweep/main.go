// Command sweep runs one memory configuration across a parameter grid
// and emits a CSV of results — the workhorse for sensitivity studies
// beyond the canned experiments.
//
// Usage:
//
//	sweep -bench libquantum -config rl -param robsize -values 16,32,64,128
//	sweep -bench mcf -config rl -param parityrate -values 0,0.01,0.1,1
//	sweep -bench leslie3d -config baseline -param cores -values 1,2,4,8
//	sweep -bench mg -config rl -param reads -values 5000,20000,80000
//	sweep -bench mcf -config rl -param faultrate -values 0,1e-4,1e-3,1e-2
//	sweep ... -faults "@1000 dead crit" -fault-seed 7
//	sweep ... -j 4                 # run grid points in parallel
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hetsim"
	"hetsim/internal/profiling"
	"hetsim/internal/runpool"
	"hetsim/internal/sim"
)

func main() {
	bench := flag.String("bench", "libquantum", "benchmark name")
	config := flag.String("config", "rl", "configuration (see cmd/hetsim)")
	param := flag.String("param", "robsize", "swept parameter: robsize|cores|parityrate|faultrate|reads")
	values := flag.String("values", "32,64,128", "comma-separated values")
	scaleName := flag.String("scale", "test", "base run scale: test|bench|paper")
	out := flag.String("o", "", "output CSV path (default stdout)")
	pair := flag.Bool("pair", false, "run the stand-alone reference too (fills throughput columns)")
	faultSpec := flag.String("faults", "", `fault environment applied to every grid point, e.g. "line.bit=1e-4; @1000 chipkill line 0 3"`)
	faultSeed := flag.Uint64("fault-seed", 0, "override the fault-injection RNG seed")
	workers := flag.Int("j", 0, "parallel grid points (0 = GOMAXPROCS, 1 = serial; output is identical)")
	epochInterval := flag.Int64("epoch-interval", 0, "sample telemetry every N cycles of each measured window (0 = off)")
	epochCSV := flag.String("epoch-csv", "", "write the per-epoch time-series as CSV to this file (needs -epoch-interval)")
	epochJSONL := flag.String("epoch-jsonl", "", "write the per-epoch time-series as JSON lines to this file (needs -epoch-interval)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fatal(err)
	}
	defer stopProf()

	var scale hetsim.Scale
	switch *scaleName {
	case "test":
		scale = hetsim.TestScale()
	case "bench":
		scale = hetsim.BenchScale()
	case "paper":
		scale = hetsim.PaperScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	if (*epochCSV != "" || *epochJSONL != "") && *epochInterval <= 0 {
		fatal(fmt.Errorf("-epoch-csv/-epoch-jsonl need -epoch-interval > 0"))
	}
	scale.EpochInterval = sim.Cycle(*epochInterval)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()

	// Build every grid point first, then fan the runs across the pool
	// and collect rows in grid order, so the CSV is byte-identical at
	// any -j.
	var vals []string
	for _, vs := range strings.Split(*values, ",") {
		vals = append(vals, strings.TrimSpace(vs))
	}
	var baseFaults hetsim.FaultConfig
	if *faultSpec != "" {
		fc, err := hetsim.ParseFaults(*faultSpec)
		if err != nil {
			fatal(err)
		}
		baseFaults = fc
	}
	if *faultSeed != 0 {
		baseFaults.Seed = *faultSeed
	}

	pool := runpool.New[int, hetsim.Results](*workers)
	tasks := make([]*runpool.Task[hetsim.Results], len(vals))
	for i, vs := range vals {
		cfg, err := baseConfig(*config, 8)
		if err != nil {
			fatal(err)
		}
		cfg.Faults = baseFaults
		runScale := scale
		switch strings.ToLower(*param) {
		case "robsize":
			n, err := strconv.Atoi(vs)
			if err != nil {
				fatal(err)
			}
			cfg.ROBSize = n
		case "cores":
			n, err := strconv.Atoi(vs)
			if err != nil {
				fatal(err)
			}
			cfg.NCores = n
		case "parityrate":
			p, err := strconv.ParseFloat(vs, 64)
			if err != nil {
				fatal(err)
			}
			cfg.CritParityErrorRate = p
		case "faultrate":
			p, err := strconv.ParseFloat(vs, 64)
			if err != nil {
				fatal(err)
			}
			// A uniform transient-bit rate on both DIMM classes: the
			// headline fault-sensitivity axis.
			cfg.Faults.Crit.TransientBit = p
			cfg.Faults.Line.TransientBit = p
		case "reads":
			n, err := strconv.ParseUint(vs, 10, 64)
			if err != nil {
				fatal(err)
			}
			runScale.MeasureReads = n
			runScale.WarmupReads = n / 10
		default:
			fatal(fmt.Errorf("unknown parameter %q", *param))
		}
		cfg.Name = fmt.Sprintf("%s[%s=%s]", cfg.Name, *param, vs)

		tasks[i] = pool.Submit(i, func() (hetsim.Results, error) {
			if *pair {
				return hetsim.RunPair(cfg, *bench, runScale)
			}
			sys, err := hetsim.NewSystem(cfg, *bench)
			if err != nil {
				return hetsim.Results{}, err
			}
			return sys.Run(runScale), nil
		})
	}

	// Epoch time-series riders: collected in grid order alongside the
	// summary rows, written after the grid completes so streams stay
	// deterministic at any -j.
	type epochPoint struct {
		value  string
		series *hetsim.EpochSeries
	}
	var epochs []epochPoint
	wroteHeader := false
	for i, vs := range vals {
		res, err := tasks[i].Wait()
		if err != nil {
			fatal(err)
		}
		if !wroteHeader {
			if err := cw.Write(append([]string{"param", "value"}, res.CSVHeader()...)); err != nil {
				fatal(err)
			}
			wroteHeader = true
		}
		if err := cw.Write(append([]string{*param, vs}, res.CSVRow()...)); err != nil {
			fatal(err)
		}
		if res.Epochs != nil {
			epochs = append(epochs, epochPoint{value: vs, series: res.Epochs})
		}
	}

	if *epochCSV != "" {
		f, err := os.Create(*epochCSV)
		if err != nil {
			fatal(err)
		}
		ecw := csv.NewWriter(f)
		var prev *hetsim.EpochSeries
		for _, p := range epochs {
			// Grid points share a header until the column signature
			// changes (e.g. a cores sweep changing cpu column count).
			header := prev == nil || !prev.SameCols(p.series)
			if err := p.series.WriteCSV(ecw, header, []string{"param", "value"},
				[]string{*param, p.value}); err != nil {
				fatal(err)
			}
			prev = p.series
		}
		ecw.Flush()
		if err := ecw.Error(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *epochJSONL != "" {
		f, err := os.Create(*epochJSONL)
		if err != nil {
			fatal(err)
		}
		for _, p := range epochs {
			if err := p.series.WriteJSONL(f, []string{"param", "value"},
				[]string{*param, p.value}); err != nil {
				fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

// baseConfig mirrors cmd/hetsim's configuration names.
func baseConfig(name string, cores int) (hetsim.Config, error) {
	switch strings.ToLower(name) {
	case "baseline", "ddr3":
		return hetsim.Baseline(cores), nil
	case "lpddr2":
		return hetsim.HomogeneousLPDDR2(cores), nil
	case "rldram3":
		return hetsim.HomogeneousRLDRAM3(cores), nil
	case "rd":
		return hetsim.RD(cores), nil
	case "rl":
		return hetsim.RL(cores), nil
	case "dl":
		return hetsim.DL(cores), nil
	case "hmc":
		return hetsim.HMCHetero(cores), nil
	default:
		return hetsim.Config{}, fmt.Errorf("unknown config %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
