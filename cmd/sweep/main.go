// Command sweep runs one memory configuration across a parameter grid
// and emits a CSV of results — the workhorse for sensitivity studies
// beyond the canned experiments.
//
// Usage:
//
//	sweep -bench libquantum -config rl -param robsize -values 16,32,64,128
//	sweep -bench mcf -config rl -param parityrate -values 0,0.01,0.1,1
//	sweep -bench leslie3d -config baseline -param cores -values 1,2,4,8
//	sweep -bench mg -config rl -param reads -values 5000,20000,80000
//	sweep -bench mcf -config rl -param faultrate -values 0,1e-4,1e-3,1e-2
//	sweep ... -faults "@1000 dead crit" -fault-seed 7
//	sweep ... -j 4                 # run grid points in parallel
//	sweep ... -cache-dir .hetsim-cache   # durable run cache: a repeat
//	                               # invocation re-runs nothing and is
//	                               # byte-identical
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"hetsim"
	"hetsim/internal/grid"
	"hetsim/internal/profiling"
	"hetsim/internal/runpool"
	"hetsim/internal/sim"
	"hetsim/internal/store"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// run is the whole command, factored over explicit streams so tests
// can execute complete invocations in-process and compare output
// bytes across cold and warm cache passes.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	bench := fs.String("bench", "libquantum", "benchmark name")
	config := fs.String("config", "rl", "configuration (see cmd/hetsim)")
	topo := fs.String("topology", "", "override the memory organization: a named topology ("+strings.Join(grid.TopologyNames(), "|")+") or a raw spec")
	param := fs.String("param", "robsize", "swept parameter: "+strings.Join(grid.Params(), "|"))
	values := fs.String("values", "32,64,128", "comma-separated values")
	scaleName := fs.String("scale", "test", "base run scale: quick|test|bench|paper")
	out := fs.String("o", "", "output CSV path (default stdout)")
	pair := fs.Bool("pair", false, "run the stand-alone reference too (fills throughput columns)")
	faultSpec := fs.String("faults", "", `fault environment applied to every grid point, e.g. "line.bit=1e-4; @1000 chipkill line 0 3"`)
	faultSeed := fs.Uint64("fault-seed", 0, "override the fault-injection RNG seed")
	workers := fs.Int("j", 0, "parallel grid points (0 = GOMAXPROCS, 1 = serial; output is identical)")
	cacheDir := fs.String("cache-dir", "", "durable run cache directory: hit entries replace simulations, output stays byte-identical")
	cacheMax := fs.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries past this total size (0 = unlimited; needs -cache-dir)")
	parallel := fs.Bool("parallel", false, "run crit/line channel controllers on separate goroutines where the organization permits (output is byte-identical)")
	epochInterval := fs.Int64("epoch-interval", 0, "sample telemetry every N cycles of each measured window (0 = off)")
	epochCSV := fs.String("epoch-csv", "", "write the per-epoch time-series as CSV to this file (needs -epoch-interval)")
	epochJSONL := fs.String("epoch-jsonl", "", "write the per-epoch time-series as JSON lines to this file (needs -epoch-interval)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer stopProf()

	scale, err := grid.Scale(*scaleName)
	if err != nil {
		return err
	}
	if (*epochCSV != "" || *epochJSONL != "") && *epochInterval <= 0 {
		return fmt.Errorf("-epoch-csv/-epoch-jsonl need -epoch-interval > 0")
	}
	scale.EpochInterval = sim.Cycle(*epochInterval)

	var cache *store.Store
	if *cacheDir != "" {
		cache, err = store.Open(*cacheDir)
		if err != nil {
			return err
		}
		cache.SetMaxBytes(*cacheMax)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()

	// Build every grid point first, then fan the runs across the pool
	// and collect rows in grid order, so the CSV is byte-identical at
	// any -j.
	var vals []string
	for _, vs := range strings.Split(*values, ",") {
		vals = append(vals, strings.TrimSpace(vs))
	}
	var baseFaults hetsim.FaultConfig
	if *faultSpec != "" {
		fc, err := hetsim.ParseFaults(*faultSpec)
		if err != nil {
			return err
		}
		baseFaults = fc
	}
	if *faultSeed != 0 {
		baseFaults.Seed = *faultSeed
	}

	pool := runpool.New[int, hetsim.Results](*workers)
	tasks := make([]*runpool.Task[hetsim.Results], len(vals))
	for i, vs := range vals {
		cfg, err := grid.Config(*config, 8)
		if err != nil {
			return err
		}
		if *topo != "" {
			if err := grid.ApplyTopology(&cfg, *topo); err != nil {
				return err
			}
		}
		cfg.Parallel = *parallel
		cfg.Faults = baseFaults
		runScale := scale
		if err := grid.Apply(&cfg, &runScale, *param, vs); err != nil {
			return err
		}

		tasks[i] = pool.Submit(i, func() (hetsim.Results, error) {
			// Disk tier: a verified cache entry replaces the run.
			var sk store.RunKey
			if cache != nil {
				sk = store.RunKey{Cfg: cfg.Key(), Bench: *bench, Scale: runScale, Pair: *pair}
				if res, ok := cache.Get(sk); ok {
					return res, nil
				}
			}
			var res hetsim.Results
			if *pair {
				r, err := hetsim.RunPair(cfg, *bench, runScale)
				if err != nil {
					return hetsim.Results{}, err
				}
				res = r
			} else {
				sys, err := hetsim.NewSystem(cfg, *bench)
				if err != nil {
					return hetsim.Results{}, err
				}
				res = sys.Run(runScale)
			}
			if cache != nil {
				if err := cache.Put(sk, res); err != nil {
					fmt.Fprintln(stderr, "sweep: cache write failed:", err)
				}
			}
			return res, nil
		})
	}

	// Epoch time-series riders: collected in grid order alongside the
	// summary rows, written after the grid completes so streams stay
	// deterministic at any -j.
	type epochPoint struct {
		value  string
		series *hetsim.EpochSeries
	}
	var epochs []epochPoint
	wroteHeader := false
	for i, vs := range vals {
		res, err := tasks[i].Wait()
		if err != nil {
			return err
		}
		if !wroteHeader {
			if err := cw.Write(append([]string{"param", "value"}, res.CSVHeader()...)); err != nil {
				return err
			}
			wroteHeader = true
		}
		if err := cw.Write(append([]string{*param, vs}, res.CSVRow()...)); err != nil {
			return err
		}
		if res.Epochs != nil {
			epochs = append(epochs, epochPoint{value: vs, series: res.Epochs})
		}
	}

	if *epochCSV != "" {
		f, err := os.Create(*epochCSV)
		if err != nil {
			return err
		}
		ecw := csv.NewWriter(f)
		var prev *hetsim.EpochSeries
		for _, p := range epochs {
			// Grid points share a header until the column signature
			// changes (e.g. a cores sweep changing cpu column count).
			header := prev == nil || !prev.SameCols(p.series)
			if err := p.series.WriteCSV(ecw, header, []string{"param", "value"},
				[]string{*param, p.value}); err != nil {
				return err
			}
			prev = p.series
		}
		ecw.Flush()
		if err := ecw.Error(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *epochJSONL != "" {
		f, err := os.Create(*epochJSONL)
		if err != nil {
			return err
		}
		for _, p := range epochs {
			if err := p.series.WriteJSONL(f, []string{"param", "value"},
				[]string{*param, p.value}); err != nil {
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	// The cache summary goes to stderr — and only with -cache-dir — so
	// default stdout stays byte-identical to the pre-cache tool.
	if cache != nil {
		st := cache.Stats()
		fmt.Fprintf(stderr, "sweep: cache %s: %d hits, %d misses, %d writes, %d corrupt\n",
			*cacheDir, st.Hits, st.Misses, st.Writes, st.Corrupt)
	}
	return nil
}
