// Command calibrate prints both throughput normalizations (vs the
// baseline-memory alone run, and vs the same-config alone run — the
// literal §5 formula) for a benchmark subset across the main system
// configurations. It exists to document how the workload models were
// calibrated against the paper's reported numbers; see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"hetsim"
	"hetsim/internal/store"
)

func main() {
	benches := flag.String("benchmarks", "libquantum,leslie3d,mcf,lbm,bzip2,sjeng", "subset")
	scaleName := flag.String("scale", "test", "test|bench|paper")
	cores := flag.Int("cores", 8, "core count")
	workers := flag.Int("j", 0, "parallel runs (0 = GOMAXPROCS, 1 = serial; output is identical)")
	cacheDir := flag.String("cache-dir", "", "durable run cache directory: hit entries replace simulations, output stays byte-identical")
	cacheMax := flag.Int64("cache-max-bytes", 0, "evict least-recently-used cache entries past this total size (0 = unlimited; needs -cache-dir)")
	flag.Parse()

	var scale hetsim.Scale
	switch *scaleName {
	case "test":
		scale = hetsim.TestScale()
	case "bench":
		scale = hetsim.BenchScale()
	case "paper":
		scale = hetsim.PaperScale()
	default:
		fmt.Fprintln(os.Stderr, "unknown scale")
		os.Exit(2)
	}

	configs := []hetsim.Config{
		hetsim.Baseline(*cores),
		hetsim.HomogeneousRLDRAM3(*cores),
		hetsim.HomogeneousLPDDR2(*cores),
		hetsim.RD(*cores),
		hetsim.RL(*cores),
		hetsim.DL(*cores),
	}
	list := strings.Split(*benches, ",")

	// All (config, benchmark) pairs go onto the shared experiment
	// runner up front; the collection loops below read memoized
	// results in deterministic order.
	opts := hetsim.ExperimentOptions{
		Scale: scale, Benchmarks: list, NCores: *cores, Workers: *workers}
	if *cacheDir != "" {
		st, err := store.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		st.SetMaxBytes(*cacheMax)
		opts.Store = st
	}
	runner := hetsim.NewExperiments(opts)
	runner.Submit(configs...)

	type row struct{ vsBase, vsSelf float64 }
	sums := map[string][]row{}
	base := map[string]hetsim.Results{}
	for _, b := range list {
		r, err := runner.Run(configs[0], b)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		base[b] = r
	}
	fmt.Printf("%-14s %-12s %10s %10s %8s %8s\n", "config", "bench", "T/Tbase", "WSself/b", "critLat", "sumIPC")
	for _, cfg := range configs {
		for _, b := range list {
			r, err := runner.Run(cfg, b)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			vsBase := r.Throughput / base[b].Throughput
			vsSelf := r.ThroughputSelf / base[b].ThroughputSelf
			sums[cfg.Name] = append(sums[cfg.Name], row{vsBase, vsSelf})
			fmt.Printf("%-14s %-12s %10.3f %10.3f %8.0f %8.2f\n", cfg.Name, b, vsBase, vsSelf, r.CritLatency, r.SumIPC)
		}
	}
	fmt.Println("---- geometric means ----")
	for _, cfg := range configs {
		gb, gs := 1.0, 1.0
		n := 0
		for _, r := range sums[cfg.Name] {
			if r.vsBase > 0 && r.vsSelf > 0 {
				gb *= r.vsBase
				gs *= r.vsSelf
				n++
			}
		}
		if n > 0 {
			gb = pow(gb, 1/float64(n))
			gs = pow(gs, 1/float64(n))
		}
		fmt.Printf("%-14s vsBase %.3f  vsSelf %.3f\n", cfg.Name, gb, gs)
	}
}

func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}
