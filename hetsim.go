// Package hetsim is a cycle-level simulator of heterogeneous DRAM main
// memories that accelerate critical word access, reproducing Chatterjee
// et al., "Leveraging Heterogeneity in DRAM Main Memories to Accelerate
// Critical Word Access" (MICRO 2012).
//
// The simulator models out-of-order cores (64-entry ROB, 4-wide), a
// two-level cache hierarchy with MSHRs and stride prefetching, and
// cycle-accurate DDR3-1600, LPDDR2-800 and RLDRAM3 channels behind
// FR-FCFS memory controllers. Its centerpiece is the paper's split
// critical-word-first (CWF) organization: word 0 (or an adaptively
// chosen word) of every cache line lives on a low-latency RLDRAM3
// sub-channel with its own controller, while the remaining words and
// ECC live on a low-power LPDDR2 (or DDR3) line channel.
//
// Quickstart:
//
//	cfg := hetsim.RL(8)                      // RLDRAM3 + LPDDR2 CWF system
//	sys, err := hetsim.NewSystem(cfg, "mcf") // 8 copies of an mcf-like trace
//	if err != nil { ... }
//	res := sys.Run(hetsim.BenchScale())
//	fmt.Println(res.SumIPC, res.CritLatency)
//
// The Experiments type regenerates every table and figure of the
// paper's evaluation; see EXPERIMENTS.md for the recorded shapes.
package hetsim

import (
	"fmt"
	"io"

	"hetsim/internal/core"
	"hetsim/internal/exp"
	"hetsim/internal/faults"
	"hetsim/internal/grid"
	"hetsim/internal/telemetry"
	"hetsim/internal/topology"
	"hetsim/internal/workload"
)

// Config describes a complete simulated machine (cores, cache
// hierarchy, and main memory organization).
type Config = core.SystemConfig

// Results are the measured outputs of one run: IPC, weighted-speedup
// throughput, critical-word latency, latency breakdown, DRAM energy,
// bus utilization and the critical-word census.
type Results = core.Results

// Scale sizes a run (warmup reads, measured reads, cycle cap).
type Scale = core.RunScale

// Placement selects the critical-word placement policy for split
// (CWF) systems.
type Placement = core.Placement

// Placement policies (§4.2.2, §4.2.5, §6.1.1).
const (
	PlaceStatic   = core.PlaceStatic
	PlaceAdaptive = core.PlaceAdaptive
	PlaceOracle   = core.PlaceOracle
	PlaceRandom   = core.PlaceRandom
)

// FaultConfig describes a fault-injection environment for a run (set it
// on Config.Faults). The zero value injects nothing and costs nothing.
type FaultConfig = faults.Config

// FaultRates are the stochastic fault rates of one DIMM class.
type FaultRates = faults.Rates

// FaultEvent is one scripted fault, applied at a simulated cycle.
type FaultEvent = faults.Event

// ParseFaults parses the -faults flag grammar into a FaultConfig, e.g.
// "crit.bit=1e-4; line.bit=1e-4; seed=7; @1000 chipkill line 0 3".
func ParseFaults(s string) (FaultConfig, error) { return faults.Parse(s) }

// Baseline returns the 8GB all-DDR3 system of Figure 5a.
func Baseline(nCores int) Config { return core.Baseline(nCores) }

// HomogeneousLPDDR2 returns the all-LPDDR2 system of Figure 1.
func HomogeneousLPDDR2(nCores int) Config { return core.HomogeneousLPDDR2(nCores) }

// HomogeneousRLDRAM3 returns the all-RLDRAM3 bound of Figures 1 and 9.
func HomogeneousRLDRAM3(nCores int) Config { return core.HomogeneousRLDRAM3(nCores) }

// RL returns the flagship configuration: RLDRAM3 critical words over
// LPDDR2 line channels (§6.1).
func RL(nCores int) Config { return core.RL(nCores) }

// RD returns RLDRAM3 critical words over DDR3 line channels.
func RD(nCores int) Config { return core.RD(nCores) }

// DL returns DDR3 critical words over LPDDR2 line channels.
func DL(nCores int) Config { return core.DL(nCores) }

// HMCHetero returns the §10 future-work system: critical words from a
// high-frequency HMC cube over low-power low-frequency cubes.
func HMCHetero(nCores int) Config { return core.HMCHetero(nCores) }

// PagePlaced returns the §7.1 comparison system: profiled hot pages on
// a half-size full-line RLDRAM3 channel, everything else on LPDDR2.
func PagePlaced(nCores int, hotPages map[uint64]bool) Config {
	return core.PagePlaced(nCores, hotPages)
}

// DRAMCached is the 3-tier organization: a fast direct-mapped RLDRAM3
// DRAM cache of full lines fronting slow LPDDR2 far memory.
func DRAMCached(nCores int) Config { return core.DRAMCached(nCores) }

// HMCMix is the §10 future-work sketch spelled as a topology: HMC-fast
// critical-word channels over HMC-lp line channels.
func HMCMix(nCores int) Config { return core.HMCMix(nCores) }

// Topology is a declarative memory organization: a validated list of
// channel groups (device kind × count × role × bus wiring). Set
// Config.Topology to override the legacy organization booleans.
type Topology = topology.Spec

// ParseTopology resolves a topology string — a named organization
// (e.g. "dram-cache") or a raw spec ("crit:rldram3x4+line:lpddr2x4") —
// into a validated, normalized Topology.
func ParseTopology(s string) (Topology, error) { return grid.ParseTopology(s) }

// TopologyNames lists the named organizations ParseTopology accepts.
func TopologyNames() []string { return grid.TopologyNames() }

// QuickScale is a CI-sized run: big enough to exercise every path,
// small enough for a multi-config smoke sweep.
func QuickScale() Scale { return core.QuickScale() }

// TestScale, BenchScale and PaperScale are the standard run sizes.
func TestScale() Scale { return core.TestScale() }

// BenchScale is the default sweep size used by the bench harness.
func BenchScale() Scale { return core.BenchScale() }

// PaperScale mirrors §5 of the paper: 2M measured DRAM reads.
func PaperScale() Scale { return core.PaperScale() }

// Benchmarks lists the 26 modelled workloads (NPB, STREAM, SPEC 2006).
func Benchmarks() []string { return workload.Names() }

// MemoryIntensiveBenchmarks lists a high-pressure subset spanning the
// streaming / strided / pointer-chase pattern families.
func MemoryIntensiveBenchmarks() []string { return workload.MemoryIntensive() }

// System is one machine running one workload.
type System struct {
	inner *core.System
}

// NewSystem builds a machine running the named benchmark (one trace
// copy per core for SPEC-style workloads, one shared address space for
// NPB/STREAM).
func NewSystem(cfg Config, benchmark string) (*System, error) {
	spec, err := workload.Get(benchmark)
	if err != nil {
		return nil, fmt.Errorf("hetsim: %w", err)
	}
	sys, err := core.NewSystem(cfg, spec)
	if err != nil {
		return nil, fmt.Errorf("hetsim: %w", err)
	}
	return &System{inner: sys}, nil
}

// Run executes warmup plus a measured window and returns Results.
func (s *System) Run(scale Scale) Results { return s.inner.Run(scale) }

// ParallelFallback reports why a run with Config.Parallel would fall
// back to the single-threaded kernel, or "" when the configured memory
// organization is lane-eligible.
func (s *System) ParallelFallback() string { return s.inner.ParallelFallback() }

// EpochSeries is a per-epoch telemetry time-series (Results.Epochs):
// one row per Scale.EpochInterval cycles of the measured window, with
// columns for IPC, queue depths, MSHR occupancy, CWF early-wake gap,
// fault counters, and per-channel-group energy.
type EpochSeries = telemetry.Series

// EpochSink receives epoch rows during a run; see NewEpochCSVSink and
// NewEpochJSONLSink for the streaming writers, flushed outside the
// timed path.
type EpochSink = telemetry.Sink

// NewEpochCSVSink returns a buffered sink streaming epoch rows as CSV.
func NewEpochCSVSink(w io.Writer) EpochSink { return telemetry.NewCSVSink(w) }

// NewEpochJSONLSink returns a buffered sink streaming epoch rows as
// one JSON object per line.
func NewEpochJSONLSink(w io.Writer) EpochSink { return telemetry.NewJSONLSink(w) }

// AddEpochSink attaches a streaming sink fed on the next Run with a
// positive Scale.EpochInterval.
func (s *System) AddEpochSink(k EpochSink) { s.inner.AddEpochSink(k) }

// EpochSinkError reports the first sink flush failure of the last Run.
func (s *System) EpochSinkError() error { return s.inner.EpochSinkError() }

// Metrics lists the system's registered telemetry metric names in
// column order.
func (s *System) Metrics() []string { return s.inner.Reg.Names() }

// RunPair measures the paper's weighted-speedup throughput metric:
// an 8-core shared run against a single-core stand-alone reference.
func RunPair(cfg Config, benchmark string, scale Scale) (Results, error) {
	spec, err := workload.Get(benchmark)
	if err != nil {
		return Results{}, fmt.Errorf("hetsim: %w", err)
	}
	return core.RunPair(cfg, spec, scale)
}

// Experiments regenerates the paper's tables and figures. Zero-value
// options select the full suite at BenchScale with 8 cores.
type Experiments = exp.Runner

// ExperimentOptions scope an experiment sweep.
type ExperimentOptions = exp.Options

// NewExperiments builds an experiment runner.
func NewExperiments(opts ExperimentOptions) *Experiments { return exp.NewRunner(opts) }
